// Command simlint runs the simulator's static-analysis suite
// (internal/analysis): the syntax checks (walltime, rawspin, maporder,
// virtualtime, seqadvance, crossshard) and the flow-sensitive checks
// (framebalance, lockpair, chargepath). It speaks the `go vet -vettool`
// protocol, so the full toolchain integration is
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=bin/simlint ./...
//
// (what `make lint` runs), and it also works standalone:
//
//	simlint ./...                # analyze packages in the current module
//	simlint -json ./...          # machine-readable diagnostics on stdout
//	simlint -allows ./...        # audit //simlint:allow directives
//
// Findings are suppressed — with a mandatory reason — by a comment on
// the offending line or the line directly above it:
//
//	//simlint:allow <analyzer> -- <reason>
//
// -allows lists every such directive and fails (exit 2) on malformed
// ones and on *stale* ones: suppressions whose analyzer no longer
// reports anything at that position, which would otherwise lie in wait
// to swallow the next real finding there.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

func main() {
	args := os.Args[1:]

	// `go vet` interrogates the tool's flag set before use; simlint
	// takes no analyzer flags.
	for _, a := range args {
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
		if a == "-V=full" || a == "--V=full" {
			// Tool-identity protocol: name and a build stamp.
			fmt.Println("simlint version simlint-1")
			return
		}
	}

	// `go vet -vettool` invokes the tool with a single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}

	jsonOut, audit := false, false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-allows", "--allows":
			audit = true
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "simlint: unknown flag %s\n", a)
				os.Exit(1)
			}
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if audit {
		os.Exit(runAllows(patterns, jsonOut))
	}
	os.Exit(runStandalone(patterns, jsonOut))
}

// jsonDiag is one -json diagnostic. The stream is sorted by
// (file, line, col, analyzer) so output is deterministic regardless of
// package load order.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func sortDiags(ds []jsonDiag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

func runStandalone(patterns []string, jsonOut bool) int {
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var all []jsonDiag
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			all = append(all, jsonDiag{p.Filename, p.Line, p.Column, d.Analyzer, d.Message})
		}
	}
	sortDiags(all)
	if jsonOut {
		if all == nil {
			all = []jsonDiag{} // an empty finding set is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(all))
		return 2
	}
	return 0
}

// jsonAllow is one -allows entry.
type jsonAllow struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Analyzer  string `json:"analyzer"`
	Reason    string `json:"reason"`
	Stale     bool   `json:"stale,omitempty"`
	Malformed string `json:"malformed,omitempty"`
}

func runAllows(patterns []string, jsonOut bool) int {
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var all []jsonAllow
	for _, pkg := range pkgs {
		allows, err := framework.AuditAllows(pkg, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		for _, a := range allows {
			p := pkg.Fset.Position(a.Pos)
			all = append(all, jsonAllow{p.Filename, p.Line, a.Analyzer, a.Reason, a.Stale, a.Malformed})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	// Test-variant packages repeat a package's files; a directive seen
	// through both the package and its test variant is one directive.
	dedup := all[:0]
	for i, a := range all {
		if i == 0 || a != all[i-1] {
			dedup = append(dedup, a)
		}
	}
	all = dedup

	bad := 0
	if jsonOut {
		if all == nil {
			all = []jsonAllow{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		for _, a := range all {
			if a.Stale || a.Malformed != "" {
				bad++
			}
		}
	} else {
		for _, a := range all {
			state := "live"
			switch {
			case a.Malformed != "":
				state = "MALFORMED: " + a.Malformed
			case a.Stale:
				state = "STALE"
			}
			fmt.Printf("%s:%d: allow %s -- %s [%s]\n", a.File, a.Line, a.Analyzer, a.Reason, state)
			if a.Stale || a.Malformed != "" {
				bad++
			}
		}
		fmt.Printf("simlint: %d allow directive(s), %d problem(s)\n", len(all), bad)
	}
	if bad > 0 {
		return 2
	}
	return 0
}
