package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/framework"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when driving a vet tool (see buildVetConfig in
// cmd/go/internal/work/exec.go). Fields simlint does not consult are
// omitted; unknown JSON fields are ignored by encoding/json.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet implements the go vet tool protocol for one package: read the
// config, write the (empty — simlint exports no facts) vetx output so
// cmd/go can cache the run, analyze, and report diagnostics on stderr.
// Exit status 0 means clean; non-zero makes `go vet` fail.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("simlint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Only this module's packages are in scope; dependency and standard
	// library packages vetted for completeness are trivially clean.
	path := framework.CleanPath(cfg.ImportPath)
	if cfg.Standard[path] || (cfg.ModulePath != "" && !inModule(path, cfg.ModulePath)) {
		return 0
	}

	fset := token.NewFileSet()
	imp := framework.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := framework.Check(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	diags, err := framework.RunAnalyzers(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, framework.Format(fset, d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func inModule(path, module string) bool {
	return path == module || strings.HasPrefix(path, module+"/")
}
