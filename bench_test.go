// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see EXPERIMENTS.md for the recorded
// outputs). Each benchmark runs the corresponding experiment end to end on
// the simulated multiprocessor and reports the paper's quantities as
// custom metrics (simulated milliseconds / microseconds), alongside the
// usual wall-clock cost of running the simulation itself.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cthreads"
	"repro/internal/experiments"
	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/tsp"
)

// benchJobs is the sweep fan-out the benchmarks run with: all cores, the
// same default the cmd/ binaries use. Sim-metric outputs are identical at
// any value; only wall-clock changes.
var benchJobs = runtime.GOMAXPROCS(0)

// benchTSPOpts is the shared workload for Tables 1–3: a 16-city Euclidean
// instance on 10 processors, the same scale regime as the paper's 32-city
// runs (see experiments.TSPOptions).
func benchTSPOpts() experiments.TSPOptions {
	return experiments.TSPOptions{Cities: 16, Seed: 1, Searchers: 10, Jobs: benchJobs}
}

func benchTSP(b *testing.B, org tsp.Organization) {
	b.Helper()
	var row experiments.TSPRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.TSPComparison(org, benchTSPOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if row.Sequential > 0 {
		b.ReportMetric(row.Sequential.Millis(), "sim-ms-sequential")
		b.ReportMetric(row.Speedup, "speedup")
	}
	b.ReportMetric(row.Blocking.Millis(), "sim-ms-blocking")
	b.ReportMetric(row.Adaptive.Millis(), "sim-ms-adaptive")
	b.ReportMetric(row.ImprovementPct, "improvement-%")
}

// BenchmarkTable1 regenerates Table 1: the centralized TSP implementation,
// sequential vs. blocking locks vs. adaptive locks.
func BenchmarkTable1(b *testing.B) { benchTSP(b, tsp.OrgCentralized) }

// BenchmarkTable2 regenerates Table 2: the distributed TSP implementation.
func BenchmarkTable2(b *testing.B) { benchTSP(b, tsp.OrgDistributed) }

// BenchmarkTable3 regenerates Table 3: the distributed implementation with
// load balancing.
func BenchmarkTable3(b *testing.B) { benchTSP(b, tsp.OrgDistributedLB) }

// BenchmarkTable4 regenerates Table 4: the Lock operation cost of each
// lock kind, local and remote.
func BenchmarkTable4(b *testing.B) {
	var rows []experiments.LockOpRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table4(experiments.Options{Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Local.Micros(), "sim-µs-"+metricName(r.Kind)+"-local")
	}
}

// BenchmarkTable5 regenerates Table 5: the Unlock operation cost.
func BenchmarkTable5(b *testing.B) {
	var rows []experiments.LockOpRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table5(experiments.Options{Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Local.Micros(), "sim-µs-"+metricName(r.Kind)+"-local")
	}
}

// BenchmarkTable6 regenerates Table 6: locking cycles of the static locks
// on a busy lock.
func BenchmarkTable6(b *testing.B) {
	var rows []experiments.CycleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table6(experiments.Options{Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Local.Micros(), "sim-µs-"+metricName(r.Kind)+"-local")
	}
}

// BenchmarkTable7 regenerates Table 7: locking cycles of the adaptive lock
// pinned to its spin and blocking configurations.
func BenchmarkTable7(b *testing.B) {
	var rows []experiments.CycleRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table7(experiments.Options{Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Local.Micros(), "sim-µs-"+metricName(r.Kind)+"-local")
	}
}

// BenchmarkTable8 regenerates Table 8: the costs of the basic adaptation
// mechanisms.
func BenchmarkTable8(b *testing.B) {
	var rows []experiments.ConfigOpRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table8(experiments.Options{Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Local.Micros(), "sim-µs-"+metricName(r.Op)+"-local")
	}
}

// BenchmarkFigure1 regenerates Figure 1: application execution time over
// critical-section length for pure spin, pure blocking, and the three
// combined locks. The reported metric is the execution-time ratio of the
// 10-spin combined lock to the 1-spin one at a 10µs critical section —
// below 1.0 it reproduces the paper's headline observation.
func BenchmarkFigure1(b *testing.B) {
	var rows []experiments.Figure1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure1(experiments.Figure1Options{
			CSLengths: []sim.Time{10 * sim.Microsecond, 100 * sim.Microsecond, 500 * sim.Microsecond},
			Jobs:      benchJobs,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	at10 := rows[0].Elapsed
	b.ReportMetric(float64(at10["combined-10"])/float64(at10["combined-1"]), "c10/c1@10µs")
	b.ReportMetric(float64(at10["combined-50"])/float64(at10["combined-10"]), "c50/c10@10µs")
	at500 := rows[2].Elapsed
	b.ReportMetric(float64(at500["pure-spin"])/float64(at500["pure-block"]), "spin/block@500µs")
}

// BenchmarkLockPatterns regenerates Figures 4–9: the waiting-thread
// patterns of qlock and glob-act-lock under each TSP organization. The
// reported metrics are the mean waiting counts of the three qlock figures
// (4, 6, 8) — the centralized one dominating is the figures' shape.
func BenchmarkLockPatterns(b *testing.B) {
	var figs []experiments.PatternFigure
	var err error
	for i := 0; i < b.N; i++ {
		figs, err = experiments.LockPatterns(experiments.TSPOptions{Cities: 14, Seed: 1, Jobs: benchJobs})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, f := range figs {
		if f.Lock == tsp.LockQueue {
			b.ReportMetric(f.Series.Mean(), metricName(string(f.Org))+"-qlock-mean-waiting")
		}
	}
}

// BenchmarkSchedulerComparison runs the FCFS/priority/handoff client-server
// extension experiment.
func BenchmarkSchedulerComparison(b *testing.B) {
	var rows []experiments.SchedRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SchedulerComparison(sim.Config{}, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanResponse.Micros(), "sim-µs-response-"+r.Scheduler)
	}
}

// BenchmarkSpinVsBlock runs the multiprogramming crossover extension
// experiment ([MS93] §2).
func BenchmarkSpinVsBlock(b *testing.B) {
	var rows []experiments.CrossoverRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SpinVsBlockCrossover(sim.Config{}, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(float64(first.Spin)/float64(first.Block), "spin/block@1tpp")
	b.ReportMetric(float64(last.Spin)/float64(last.Block), "spin/block@4tpp")
}

// BenchmarkPolicyAblation sweeps the SimpleAdapt constants (the paper's
// future-work question about Waiting-Threshold and n).
func BenchmarkPolicyAblation(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.PolicyAblation(sim.Config{}, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := rows[0]
	for _, r := range rows {
		if r.Elapsed < best.Elapsed {
			best = r
		}
	}
	b.ReportMetric(float64(best.WaitingThreshold), "best-threshold")
	b.ReportMetric(float64(best.Step), "best-n")
	b.ReportMetric(best.Elapsed.Millis(), "sim-ms-best")
}

// BenchmarkShardedEngine runs one big 1024-node NUMA simulation — the
// client/server ring of the sharded-scaling experiment — partitioned
// into 1, 2, 4, and 8 conservative-parallel shards. The simulated
// quantities are identical in every sub-benchmark by the sharded
// engine's serial-equivalence contract, so any cross-shard drift trips
// the benchjson gate; ns/op shows the wall-clock effect of partitioning
// (real speedup needs real cores — on a single-core host the shards
// time-slice and only the coordination overhead is visible).
func BenchmarkShardedEngine(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var row experiments.ShardedRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.ShardedRun(sim.Config{Nodes: 1024, Seed: 1}, shards, 0, 2)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SimTime.Millis(), "sim-ms-elapsed")
			b.ReportMetric(float64(row.CrossMsgs), "sim-cross-msgs")
			b.ReportMetric(float64(row.Checksum%1_000_000_007), "sim-checksum")
		})
	}
}

// metricName flattens a label into a benchmark-metric-safe token.
func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+'a'-'A')
		case r == ' ' || r == '-' || r == '(' || r == ')':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// BenchmarkAdvisoryLock runs the variable-length critical-section
// extension experiment ([MS93] via §2: advisory locks do well when
// critical-section lengths vary).
func BenchmarkAdvisoryLock(b *testing.B) {
	var rows []experiments.AdvisoryRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AdvisoryComparison(sim.Config{}, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Elapsed.Millis(), "sim-ms-"+metricName(r.Strategy))
	}
}

// BenchmarkLockRetargeting runs the §2 lock-representation ablation:
// centralized remote-spin TAS vs. distributed local-spin MCS under
// memory-module contention.
func BenchmarkLockRetargeting(b *testing.B) {
	var rows []experiments.RetargetRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.LockRetargeting(sim.Config{}, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.RemoteSpin.Millis(), "sim-ms-remote-spin-16t")
	b.ReportMetric(last.LocalSpin.Millis(), "sim-ms-local-spin-16t")
	b.ReportMetric(last.HotSpotDelay.Millis(), "sim-ms-hotspot-delay-16t")
}

// BenchmarkCoupling measures the feedback-loop coupling comparison: the
// closely-coupled inline monitor vs. the general-purpose thread monitor
// pipeline, reporting the loose loop's decision lag.
func BenchmarkCoupling(b *testing.B) {
	var rows []experiments.CouplingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.CouplingComparison(sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Elapsed.Millis(), "sim-ms-closely-coupled")
	b.ReportMetric(rows[1].Elapsed.Millis(), "sim-ms-loosely-coupled")
	b.ReportMetric(rows[1].DecisionLag.Micros(), "sim-µs-decision-lag")
}

// BenchmarkPlatformRetargeting sweeps UMA/NUMA/NORMA machine presets,
// reporting how the spin/block preference shifts (§2).
func BenchmarkPlatformRetargeting(b *testing.B) {
	var rows []experiments.PlatformRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.PlatformRetargeting(benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SpinOverBlock, "spin/block-"+metricName(r.Platform))
	}
}

// BenchmarkScaling sweeps the centralized TSP comparison over processor
// counts (§4's "gain even higher for massively parallel" prediction).
func BenchmarkScaling(b *testing.B) {
	var rows []experiments.ScalingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.ScalingComparison(experiments.TSPOptions{Cities: 14, Seed: 1, Jobs: benchJobs}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ImprovementPct, fmt.Sprintf("improvement-%%-%dp", r.Searchers))
	}
}

// BenchmarkSOR runs the massively-parallel SOR comparison (the §7
// follow-on study): blocking vs. adaptive residual lock across worker
// counts.
func BenchmarkSOR(b *testing.B) {
	var rows []experiments.SORRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SORComparison(nil, benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ImprovementPct, fmt.Sprintf("improvement-%%-%dw", r.Workers))
	}
}

// BenchmarkAdaptiveBarrier compares spin, sleep, and adaptive barriers on
// SOR in private and multiprogrammed regimes (§7's "other operating
// system components").
func BenchmarkAdaptiveBarrier(b *testing.B) {
	var rows []experiments.BarrierRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.BarrierComparison(benchJobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Adaptive.Millis(), "sim-ms-adaptive-"+metricName(r.Regime))
		b.ReportMetric(r.Spin.Millis(), "sim-ms-spin-"+metricName(r.Regime))
		b.ReportMetric(r.Sleep.Millis(), "sim-ms-sleep-"+metricName(r.Regime))
	}
}

// BenchmarkLockContended measures the contended-acquire regime the
// spin-batching fast path targets: waiters hammering one lock word on the
// hot-spot machine (every futile probe costs module service). The
// simulated completion time is the deterministic metric; ns/op shows how
// cheaply the simulator now gets there.
func BenchmarkLockContended(b *testing.B) {
	builders := []struct {
		name  string
		build func(sys *cthreads.System) locks.Lock
	}{
		{"spin", func(sys *cthreads.System) locks.Lock {
			return locks.NewSpinLock(sys, 0, "spin", locks.DefaultCosts())
		}},
		{"backoff", func(sys *cthreads.System) locks.Lock {
			return locks.NewBackoffSpinLock(sys, 0, "backoff", locks.DefaultCosts())
		}},
		{"mcs", func(sys *cthreads.System) locks.Lock {
			return locks.NewLocalSpinLock(sys, 0, "mcs", locks.DefaultCosts())
		}},
		{"mutable", func(sys *cthreads.System) locks.Lock {
			return locks.NewMutableLock(sys, 0, "mutable", locks.DefaultCosts())
		}},
		{"cohort", func(sys *cthreads.System) locks.Lock {
			return locks.NewCohortLock(sys, 0, "cohort", locks.DefaultCosts())
		}},
	}
	for _, bl := range builders {
		for _, waiters := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("%s/w%d", bl.name, waiters), func(b *testing.B) {
				var elapsed sim.Time
				var spins uint64
				for i := 0; i < b.N; i++ {
					cfg := sim.HotSpotConfig()
					cfg.Nodes = waiters
					cfg.Seed = 1
					sys := cthreads.New(cfg)
					l := bl.build(sys)
					for w := 0; w < waiters; w++ {
						sys.Fork(w, fmt.Sprintf("w%d", w), func(th *cthreads.Thread) {
							r := th.Rand()
							for j := 0; j < 20; j++ {
								l.Lock(th)
								th.Advance(2 * sim.Microsecond)
								l.Unlock(th)
								th.Advance(sim.Time(r.Intn(2000)))
							}
						})
					}
					if err := sys.Run(); err != nil {
						b.Fatal(err)
					}
					elapsed = sys.Now()
					spins = l.Stats().SpinIters
				}
				b.ReportMetric(elapsed.Micros(), "sim-µs-elapsed")
				b.ReportMetric(float64(spins), "sim-spin-iters")
			})
		}
	}
}

// benchMonitorHotspot reports one execution mode of the contended-hotspot
// monitor benchmark: callers threads hammer one monitor with short
// methods. The simulated completion time and method-latency percentiles
// are the deterministic metrics; the tentpole claim is the p99 cut of the
// combining modes at high caller counts.
func benchMonitorHotspot(b *testing.B, mode string) {
	for _, callers := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("c%d", callers), func(b *testing.B) {
			var row experiments.MonitorHotspotRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.MonitorHotspotRun(sim.Config{}, mode, callers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.Elapsed.Micros(), "sim-µs-elapsed")
			b.ReportMetric(row.P50.Micros(), "sim-µs-p50")
			b.ReportMetric(row.P99.Micros(), "sim-µs-p99")
			b.ReportMetric(float64(row.MaxBatch), "sim-max-batch")
		})
	}
}

// BenchmarkMonitorSync is the synchronous-locking baseline through the
// monitor entry path.
func BenchmarkMonitorSync(b *testing.B) { benchMonitorHotspot(b, "sync") }

// BenchmarkMonitorAsync is flat combining: submitters enqueue futures and
// an elected lock holder drains the queue in batches.
func BenchmarkMonitorAsync(b *testing.B) { benchMonitorHotspot(b, "flat") }

// BenchmarkMonitorCombining is the dedicated server-thread combiner.
func BenchmarkMonitorCombining(b *testing.B) { benchMonitorHotspot(b, "server") }
