// TSP example: solve one Euclidean Travelling Sales Person instance four
// ways — sequentially, and with the paper's three parallel organizations
// on a 10-processor simulated multiprocessor — and compare.
//
//	go run ./examples/tsp
package main

import (
	"fmt"
	"log"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/tsp"
)

func main() {
	log.SetFlags(0)

	in := tsp.NewEuclideanInstance(14, 7)
	fmt.Printf("instance: %s\n\n", in)

	seq, err := tsp.SolveSequentialSim(in, sim.Config{Nodes: 1}, 60, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s cost=%-6d time=%-12s expansions=%d\n",
		"sequential", seq.Tour.Cost, seq.Elapsed, seq.Expansions)

	for _, org := range []tsp.Organization{tsp.OrgCentralized, tsp.OrgDistributed, tsp.OrgDistributedLB} {
		res, err := tsp.Solve(tsp.Config{
			Instance:         in,
			Searchers:        10,
			Org:              org,
			LockKind:         locks.KindAdaptive,
			StepsPerWorkUnit: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s cost=%-6d time=%-12s expansions=%-6d speedup=%.1f×\n",
			org, res.Tour.Cost, res.Elapsed, res.Expansions,
			float64(seq.Elapsed)/float64(res.Elapsed))
	}

	fmt.Println("\nAll four solvers find the same optimal tour; they differ only in")
	fmt.Println("virtual time and in how much of the search tree they touch.")
}
