// SOR example: the massively parallel application of the paper's §7
// follow-on study. A heat plate is relaxed by 8 workers; the sweep
// barriers and the residual lock are both adaptive objects, and the run
// is compared across scheduling regimes.
//
//	go run ./examples/sor
package main

import (
	"fmt"
	"log"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/sor"
)

func main() {
	log.SetFlags(0)

	p := sor.Problem{N: 32, Tol: 1e-2}
	serial, err := sor.SolveSerial(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial: %d sweeps to residual %.2e (%d cell updates)\n\n",
		serial.Sweeps, serial.Residual, serial.Cells)

	fmt.Printf("%-22s %-10s %-12s %s\n", "configuration", "sweeps", "elapsed", "utilization")
	for _, cfg := range []struct {
		name    string
		procs   int
		barrier string
		quantum sim.Time
	}{
		{"8 procs, sleep barrier", 8, "sleep", 0},
		{"8 procs, spin barrier", 8, "spin", 0},
		{"8 procs, adaptive", 8, "adaptive", 0},
		{"4 procs, sleep barrier", 4, "sleep", 500 * sim.Microsecond},
		{"4 procs, spin barrier", 4, "spin", 500 * sim.Microsecond},
		{"4 procs, adaptive", 4, "adaptive", 500 * sim.Microsecond},
	} {
		res, err := sor.Solve(sor.Config{
			Problem:     p,
			Workers:     8,
			Procs:       cfg.procs,
			LockKind:    locks.KindAdaptive,
			BarrierKind: cfg.barrier,
			Machine:     sim.Config{Quantum: cfg.quantum},
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Sweeps != serial.Sweeps {
			log.Fatalf("parallel sweeps %d != serial %d", res.Sweeps, serial.Sweeps)
		}
		fmt.Printf("%-22s %-10d %-12s %.0f%%\n", cfg.name, res.Sweeps, res.Elapsed, 100*res.Utilization)
	}

	fmt.Println("\nThe adaptive barrier senses whether arrivals have co-runnable")
	fmt.Println("threads on their processors: with private processors it converges")
	fmt.Println("to polling (matching the spin barrier), multiprogrammed it takes a")
	fmt.Println("short grace poll and sleeps (beating both static barriers).")
}
