// Quickstart: build a simulated NUMA multiprocessor, put an adaptive lock
// on it, run a handful of threads through a shared counter, and watch the
// lock configure itself.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cthreads"
	"repro/internal/locks"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A 4-node machine with GP1000-flavoured default latencies. Each node
	// pairs a processor with a memory module; remote references cost 4×
	// local ones.
	sys := cthreads.New(sim.Config{Nodes: 4})

	// An adaptive lock on node 0 with the paper's simple adaptation
	// policy: it senses the number of waiting threads on every other
	// unlock and retunes how long requesters spin before sleeping.
	lock := locks.NewAdaptiveLock(sys, 0, "counter-lock", locks.DefaultCosts(), nil)

	// A shared counter in node 0's memory: every access from nodes 1-3 is
	// charged the remote latency automatically.
	counter := sys.Machine().NewCell(0, "counter", 0)

	for proc := 0; proc < 4; proc++ {
		sys.Fork(proc, fmt.Sprintf("worker%d", proc), func(t *cthreads.Thread) {
			for i := 0; i < 100; i++ {
				lock.Lock(t)
				v := counter.Load(t)
				t.Compute(20) // 20 instruction steps of critical-section work
				counter.Store(t, v+1)
				lock.Unlock(t)
				t.Advance(sim.Time(t.Rand().Intn(100)) * sim.Microsecond)
			}
		})
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (expected 400)\n", counter.Peek())
	fmt.Printf("virtual time elapsed: %s\n", sys.Now())
	st := lock.Stats()
	fmt.Printf("lock: %d acquisitions, %d contended, %d blocks, %d spin iterations\n",
		st.Acquisitions, st.Contended, st.Blocks, st.SpinIters)
	fmt.Printf("final lock configuration: %s\n", lock.Object().Configuration())
	fmt.Printf("adaptation: %+v\n", lock.Object().Stats())
}
