// Native mutex example: the paper's adaptive-lock idea applied to real Go
// concurrency. An adaptivesync.Mutex protects a counter while the
// goroutine population shifts from calm to storm and back; the built-in
// monitor and policy move the spin budget accordingly.
//
//	go run ./examples/nativemutex
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/adaptivesync"
)

func main() {
	m := adaptivesync.New(nil)
	counter := 0

	report := func(phase string) {
		st := m.StatsSnapshot()
		fmt.Printf("%-18s spin-time=%-4d acquisitions=%-7d parks=%-6d samples=%d\n",
			phase, m.SpinTime(), st.Acquisitions, st.Parks, st.Samples)
	}

	// Phase 1: a single goroutine — no contention.
	for i := 0; i < 200; i++ {
		m.Lock()
		counter++
		m.Unlock()
	}
	report("calm:")

	// Phase 2: a storm of goroutines with slow critical sections. A
	// poller records the lowest spin budget the policy reached while the
	// storm was live (after the storm drains, samples see no waiters and
	// the policy climbs back — that is the adaptation working, not
	// noise).
	minSpin := m.SpinTime()
	stopPoll := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			if s := m.SpinTime(); s < minSpin {
				minSpin = s
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Lock()
				counter++
				time.Sleep(100 * time.Microsecond)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stopPoll)
	pollWg.Wait()
	report("storm:")
	fmt.Printf("%-18s spin-time dipped to %d while waiters piled up\n", "", minSpin)

	// Phase 3: calm again — the policy climbs back toward pure spin.
	for i := 0; i < 200; i++ {
		m.Lock()
		counter++
		m.Unlock()
	}
	report("calm again:")

	fmt.Printf("\ncounter = %d (expected %d)\n", counter, 200+16*50+200)
	fmt.Printf("final object configuration: %s\n", m.Object().Configuration())
}
