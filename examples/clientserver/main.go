// Client-server example: the same producer-consumer program run under the
// reconfigurable lock's three scheduler variants. The lock scheduler —
// not the program — decides how quickly the server gets the lock, and
// with it how far the request backlog grows.
//
//	go run ./examples/clientserver
package main

import (
	"fmt"
	"log"

	"repro/internal/locks"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("8 clients produce requests under one lock; 1 server consumes them.")
	fmt.Println()
	fmt.Printf("%-10s %-14s %-18s %s\n", "scheduler", "completion", "mean response", "peak backlog")
	for _, sched := range []string{locks.SchedFCFS, locks.SchedPriority, locks.SchedHandoff} {
		res, err := workload.RunClientServer(workload.ClientServerConfig{
			Clients:     8,
			Requests:    25,
			ServiceTime: 10 * sim.Microsecond,
			ThinkTime:   20 * sim.Microsecond,
			Scheduler:   sched,
			Machine:     sim.Config{},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-14s %-18s %d\n", sched, res.Elapsed, res.MeanResponse, res.QueuePeak)
	}
	fmt.Println()
	fmt.Println("Under FCFS the server waits behind every client and the backlog —")
	fmt.Println("and with it every response time — grows; priority and handoff keep")
	fmt.Println("the bottleneck thread supplied with the lock.")
}
